#ifndef MGJOIN_COMMON_LOGGING_H_
#define MGJOIN_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace mgjoin {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kFatal };

/// Global log threshold; messages below it are dropped. Defaults to kWarn
/// so that library code stays quiet in benchmarks unless asked.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// \brief Registers `fn` to run after a Fatal message is printed and
/// before the process aborts — the hook for flushing diagnostics (the
/// bench harness flushes its Chrome trace here, so a crashed run keeps
/// the trace that explains it).
///
/// Hooks run in reverse registration order, each at most once per
/// process; a hook that itself fails fatally does not re-enter the
/// chain. Not removable: registrants must be process-lifetime objects.
void AtFatal(std::function<void()> fn);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal

#define MGJ_LOG(level)                                                  \
  ::mgjoin::internal::LogMessage(::mgjoin::LogLevel::k##level, __FILE__, \
                                 __LINE__)

/// CHECK-style invariant assertions: active in all build types because
/// the simulator's correctness depends on them.
#define MGJ_CHECK(cond)                                          \
  if (!(cond))                                                   \
  ::mgjoin::internal::LogMessage(::mgjoin::LogLevel::kFatal,     \
                                 __FILE__, __LINE__)             \
      << "Check failed: " #cond " "

#define MGJ_CHECK_OK(expr)                                       \
  do {                                                           \
    ::mgjoin::Status _st = (expr);                               \
    MGJ_CHECK(_st.ok()) << _st.ToString();                       \
  } while (false)

#define MGJ_DCHECK(cond) MGJ_CHECK(cond)

}  // namespace mgjoin

#endif  // MGJOIN_COMMON_LOGGING_H_
