#include "common/wallprof.h"

namespace mgjoin {

WallProfiler& WallProfiler::Global() {
  static WallProfiler prof;
  return prof;
}

void WallProfiler::Add(const std::string& phase, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  seconds_[phase] += seconds;
}

std::vector<std::pair<std::string, double>> WallProfiler::Phases() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {seconds_.begin(), seconds_.end()};
}

double WallProfiler::TotalSeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  double total = 0.0;
  for (const auto& [_, s] : seconds_) total += s;
  return total;
}

void WallProfiler::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  seconds_.clear();
}

}  // namespace mgjoin
