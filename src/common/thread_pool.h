#ifndef MGJOIN_COMMON_THREAD_POOL_H_
#define MGJOIN_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mgjoin {

/// \brief Minimal fixed-size thread pool for the functional layer.
///
/// The simulated GPUs process real tuples; ParallelFor spreads that work
/// over host threads so large functional runs stay tractable. Simulation
/// *timing* never depends on the pool — the discrete-event clock is
/// single-threaded and deterministic — and every parallel producer in
/// the repository writes thread-private output merged in canonical
/// order, so functional results are byte-identical at any thread count
/// (the determinism contract, DESIGN.md Sec 11).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `fn` and returns immediately.
  void Submit(std::function<void()> fn);

  /// Blocks until every submitted task has finished. If any task threw,
  /// rethrows the first exception (in submission-completion order); the
  /// remaining tasks still run to completion first — no task is lost.
  void Wait();

  std::size_t num_threads() const { return threads_.size(); }

  /// Returns a process-wide pool. Sized by ResolveThreadCount(0):
  /// `MGJ_THREADS` when set, hardware concurrency otherwise.
  static ThreadPool* Default();

  /// \brief Re-creates the default pool with `n` threads (0 = re-resolve
  /// from MGJ_THREADS / hardware concurrency).
  ///
  /// Used by the `--threads` / MgJoinOptions::host_threads plumbing and
  /// by the determinism suite to sweep thread counts in-process. Must
  /// not be called while parallel work is in flight.
  static void SetDefaultThreads(std::size_t n);

  /// \brief Thread-count resolution policy.
  ///
  /// `requested` <= 0 falls back to MGJ_THREADS, then to the hardware
  /// concurrency. Explicit requests are clamped to max(hardware, 8): the
  /// floor lets the determinism suite exercise real interleavings on
  /// small CI boxes, the cap keeps MGJ_THREADS=10000 from spawning
  /// 10000 threads (nested parallel sections never fan out at all — see
  /// InWorker()).
  static std::size_t ResolveThreadCount(long requested);

  /// True on a pool worker thread. ParallelFor uses this to run nested
  /// parallel sections inline: a worker that blocked in Wait() on the
  /// pool it runs on would deadlock, and re-submitting would fan tasks
  /// out quadratically.
  static bool InWorker();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  std::queue<std::function<void()>> tasks_;
  std::size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> threads_;
};

/// Runs fn(i) for i in [begin, end) across the default pool, blocking
/// until all iterations complete. Falls back to serial execution for
/// small ranges and when already inside a pool worker (nested use).
/// Exceptions thrown by `fn` propagate to the caller.
void ParallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn);

/// Morsel-granular variant: splits [begin, end) into fixed chunks of
/// `grain` indices and runs fn(chunk_begin, chunk_end) per chunk. Chunk
/// boundaries depend only on `grain`, never on the thread count, so
/// per-chunk outputs merged in chunk order are thread-count invariant.
void ParallelForChunked(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace mgjoin

#endif  // MGJOIN_COMMON_THREAD_POOL_H_
