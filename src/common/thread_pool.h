#ifndef MGJOIN_COMMON_THREAD_POOL_H_
#define MGJOIN_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mgjoin {

/// \brief Minimal fixed-size thread pool for the functional layer.
///
/// The simulated GPUs process real tuples; ParallelFor spreads that work
/// over host threads so large functional runs stay tractable. Simulation
/// *timing* never depends on the pool — the discrete-event clock is
/// single-threaded and deterministic.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `fn` and returns immediately.
  void Submit(std::function<void()> fn);

  /// Blocks until every submitted task has finished.
  void Wait();

  std::size_t num_threads() const { return threads_.size(); }

  /// Returns a process-wide pool sized to the hardware concurrency.
  static ThreadPool* Default();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  std::queue<std::function<void()>> tasks_;
  std::size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

/// Runs fn(i) for i in [begin, end) across the default pool, blocking
/// until all iterations complete. Falls back to serial execution for
/// small ranges.
void ParallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn);

}  // namespace mgjoin

#endif  // MGJOIN_COMMON_THREAD_POOL_H_
