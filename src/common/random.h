#ifndef MGJOIN_COMMON_RANDOM_H_
#define MGJOIN_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace mgjoin {

/// \brief Fast, reproducible pseudo-random generator (xoshiro256**).
///
/// All data generation in the repository goes through this generator so
/// that every experiment is bit-reproducible from its seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Returns the next 64 random bits.
  std::uint64_t Next();

  /// Returns a uniform integer in [0, bound). bound must be > 0.
  std::uint64_t Uniform(std::uint64_t bound);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Fisher-Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(Uniform(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

/// \brief Zipf-distributed integer generator over [0, n).
///
/// Uses the standard inverse-CDF method with a precomputed cumulative
/// table (n is at most a few million in our workloads, so the table is
/// cheap). z = 0 degenerates to the uniform distribution, matching the
/// paper's "Zipf factor" axis in Figures 5b and 9.
class ZipfGenerator {
 public:
  /// \param n     number of distinct values
  /// \param z     Zipf skew parameter (>= 0)
  /// \param seed  RNG seed
  ZipfGenerator(std::uint64_t n, double z, std::uint64_t seed = 42);

  /// Returns the next Zipf-distributed value in [0, n).
  std::uint64_t Next();

  std::uint64_t n() const { return n_; }
  double z() const { return z_; }

 private:
  std::uint64_t n_;
  double z_;
  Rng rng_;
  std::vector<double> cdf_;  // cumulative probabilities, size n
};

}  // namespace mgjoin

#endif  // MGJOIN_COMMON_RANDOM_H_
