#ifndef MGJOIN_COMMON_RANDOM_H_
#define MGJOIN_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace mgjoin {

/// \brief Fast, reproducible pseudo-random generator (xoshiro256**).
///
/// All data generation in the repository goes through this generator so
/// that every experiment is bit-reproducible from its seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Returns the next 64 random bits.
  std::uint64_t Next();

  /// Returns a uniform integer in [0, bound). bound must be > 0.
  std::uint64_t Uniform(std::uint64_t bound);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Fisher-Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(Uniform(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

/// \brief Zipf-distributed integer generator over [0, n).
///
/// Uses the standard inverse-CDF method with a precomputed cumulative
/// table (n is at most a few million in our workloads, so the table is
/// cheap). z = 0 degenerates to the uniform distribution, matching the
/// paper's "Zipf factor" axis in Figures 5b and 9.
class ZipfGenerator {
 public:
  /// \param n     number of distinct values
  /// \param z     Zipf skew parameter (>= 0)
  /// \param seed  RNG seed
  ZipfGenerator(std::uint64_t n, double z, std::uint64_t seed = 42);

  /// Returns the next Zipf-distributed value in [0, n).
  std::uint64_t Next();

  /// \brief Counter-based draw: the Zipf value of stream position `i`,
  /// independent of call order and of every other position.
  ///
  /// This is the parallel generator's API: morsels evaluate disjoint
  /// index ranges concurrently and the output is identical at any
  /// thread count. The stream is keyed by the constructor seed but is
  /// distinct from the sequential Next() stream.
  std::uint64_t ValueAt(std::uint64_t i) const;

  std::uint64_t n() const { return n_; }
  double z() const { return z_; }

 private:
  std::uint64_t n_;
  double z_;
  std::uint64_t seed_;
  Rng rng_;
  std::vector<double> cdf_;  // cumulative probabilities, size n
};

/// \brief Seeded bijection on [0, n): a 4-round Feistel network over the
/// enclosing power-of-four domain, cycle-walked back into range.
///
/// Apply(i) is O(1) expected and reads only immutable state, so a
/// permutation can be evaluated at arbitrary positions from many
/// threads at once — this is what makes shuffled-key generation
/// embarrassingly parallel *and* thread-count invariant (each position's
/// key is a pure function of (seed, position)). Replaces the sequential
/// Fisher-Yates shuffle in the workload generator.
class IndexPermutation {
 public:
  IndexPermutation(std::uint64_t n, std::uint64_t seed);

  /// The image of `i` (i < n) under the permutation; always < n.
  std::uint64_t Apply(std::uint64_t i) const;

  std::uint64_t n() const { return n_; }

 private:
  std::uint64_t EncryptOnce(std::uint64_t i) const;

  std::uint64_t n_;
  int half_bits_;           // each Feistel half is this wide
  std::uint64_t half_mask_;
  std::uint64_t keys_[4];
};

/// Stateless counter hash: the 64-bit value of stream `seed` at counter
/// `i` (splitmix64 finalizer over the keyed counter). The building block
/// of every counter-based stream above.
std::uint64_t CounterHash(std::uint64_t seed, std::uint64_t i);

/// CounterHash mapped to a uniform double in [0, 1).
double CounterDouble(std::uint64_t seed, std::uint64_t i);

}  // namespace mgjoin

#endif  // MGJOIN_COMMON_RANDOM_H_
