#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <utility>

namespace mgjoin {

namespace {

thread_local bool tls_in_worker = false;

std::size_t HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::mutex& DefaultPoolMutex() {
  static std::mutex mu;
  return mu;
}

std::unique_ptr<ThreadPool>& DefaultPoolSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(fn));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::WorkerLoop() {
  tls_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    std::exception_ptr err;
    try {
      task();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (err != nullptr && first_error_ == nullptr) first_error_ = err;
      if (--in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

std::size_t ThreadPool::ResolveThreadCount(long requested) {
  if (requested <= 0) {
    const char* e = std::getenv("MGJ_THREADS");
    if (e != nullptr && *e != '\0') requested = std::atol(e);
  }
  const std::size_t hw = HardwareThreads();
  if (requested <= 0) return hw;
  return std::min<std::size_t>(static_cast<std::size_t>(requested),
                               std::max<std::size_t>(hw, 8));
}

bool ThreadPool::InWorker() { return tls_in_worker; }

ThreadPool* ThreadPool::Default() {
  std::lock_guard<std::mutex> lock(DefaultPoolMutex());
  auto& pool = DefaultPoolSlot();
  if (pool == nullptr) {
    pool = std::make_unique<ThreadPool>(ResolveThreadCount(0));
  }
  return pool.get();
}

void ThreadPool::SetDefaultThreads(std::size_t n) {
  std::lock_guard<std::mutex> lock(DefaultPoolMutex());
  auto& pool = DefaultPoolSlot();
  const std::size_t want = ResolveThreadCount(static_cast<long>(n));
  if (pool != nullptr && pool->num_threads() == want) return;
  pool.reset();  // joins the old workers before the new pool spins up
  pool = std::make_unique<ThreadPool>(want);
}

void ParallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  if (ThreadPool::InWorker()) {
    // Nested parallel section: run inline on this worker. Blocking in
    // Wait() here would deadlock the pool, and re-submitting would fan
    // out N^2 tasks.
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  ThreadPool* pool = ThreadPool::Default();
  if (n < 2 || pool->num_threads() < 2) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  for (std::size_t i = begin; i < end; ++i) {
    pool->Submit([i, &fn] { fn(i); });
  }
  pool->Wait();
}

void ParallelForChunked(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (end <= begin) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t chunks = (end - begin + grain - 1) / grain;
  ParallelFor(0, chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * grain;
    fn(lo, std::min(end, lo + grain));
  });
}

}  // namespace mgjoin
