#include "common/thread_pool.h"

#include <algorithm>

namespace mgjoin {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(fn));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

ThreadPool* ThreadPool::Default() {
  static ThreadPool pool(std::thread::hardware_concurrency());
  return &pool;
}

void ParallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  ThreadPool* pool = ThreadPool::Default();
  if (n < 2 || pool->num_threads() < 2) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  for (std::size_t i = begin; i < end; ++i) {
    pool->Submit([i, &fn] { fn(i); });
  }
  pool->Wait();
}

}  // namespace mgjoin
