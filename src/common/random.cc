#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/bitutil.h"
#include "common/thread_pool.h"

namespace mgjoin {

namespace {
inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64 finalizer: bijective 64-bit mix.
inline std::uint64_t Mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// splitmix64, used to expand the seed into the xoshiro state.
inline std::uint64_t SplitMix64(std::uint64_t* state) {
  return Mix64(*state += 0x9E3779B97F4A7C15ull);
}
}  // namespace

std::uint64_t CounterHash(std::uint64_t seed, std::uint64_t i) {
  return Mix64(seed + (i + 1) * 0x9E3779B97F4A7C15ull);
}

double CounterDouble(std::uint64_t seed, std::uint64_t i) {
  return static_cast<double>(CounterHash(seed, i) >> 11) * 0x1.0p-53;
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::Uniform(std::uint64_t bound) {
  // Lemire's nearly-divisionless method would be overkill here; a simple
  // rejection loop keeps the distribution exactly uniform.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

ZipfGenerator::ZipfGenerator(std::uint64_t n, double z, std::uint64_t seed)
    : n_(n), z_(z), seed_(seed), rng_(seed) {
  cdf_.resize(n);
  // The pow() calls dominate and are independent, so they parallelize;
  // the prefix sum stays serial so the floating-point accumulation
  // order (and thus the cdf) is identical at any thread count.
  ParallelForChunked(0, n, 1u << 16,
                     [&](std::size_t lo, std::size_t hi) {
                       for (std::size_t i = lo; i < hi; ++i) {
                         cdf_[i] = 1.0 / std::pow(
                                             static_cast<double>(i + 1), z);
                       }
                     });
  double sum = 0.0;
  for (auto& c : cdf_) {
    sum += c;
    c = sum;
  }
  const double inv = 1.0 / sum;
  for (auto& c : cdf_) c *= inv;
  cdf_.back() = 1.0;  // guard against rounding
}

std::uint64_t ZipfGenerator::Next() {
  const double u = rng_.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

std::uint64_t ZipfGenerator::ValueAt(std::uint64_t i) const {
  // Keyed off the seed but domain-separated from the sequential Next()
  // stream (which consumes xoshiro state instead).
  const double u = CounterDouble(seed_ ^ 0x5A1FD00Dull, i);
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

IndexPermutation::IndexPermutation(std::uint64_t n, std::uint64_t seed)
    : n_(n) {
  // Smallest even-width domain 2^(2h) >= n, h >= 1, so the cycle walk
  // visits < 4 out-of-range points in expectation.
  half_bits_ = (Log2Ceil(std::max<std::uint64_t>(n, 2)) + 1) / 2;
  half_mask_ = (1ull << half_bits_) - 1;
  std::uint64_t sm = seed;
  for (auto& k : keys_) k = SplitMix64(&sm);
}

std::uint64_t IndexPermutation::EncryptOnce(std::uint64_t i) const {
  std::uint64_t l = i >> half_bits_;
  std::uint64_t r = i & half_mask_;
  for (const std::uint64_t key : keys_) {
    const std::uint64_t f = Mix64(r + key) & half_mask_;
    const std::uint64_t next_r = l ^ f;
    l = r;
    r = next_r;
  }
  return (l << half_bits_) | r;
}

std::uint64_t IndexPermutation::Apply(std::uint64_t i) const {
  if (n_ <= 1) return 0;
  // Cycle-walk: the Feistel network permutes the power-of-four domain,
  // so repeatedly encrypting an in-domain point must return to [0, n).
  do {
    i = EncryptOnce(i);
  } while (i >= n_);
  return i;
}

}  // namespace mgjoin
