#include "common/random.h"

#include <algorithm>
#include <cmath>

namespace mgjoin {

namespace {
inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64, used to expand the seed into the xoshiro state.
inline std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::Uniform(std::uint64_t bound) {
  // Lemire's nearly-divisionless method would be overkill here; a simple
  // rejection loop keeps the distribution exactly uniform.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

ZipfGenerator::ZipfGenerator(std::uint64_t n, double z, std::uint64_t seed)
    : n_(n), z_(z), rng_(seed) {
  cdf_.resize(n);
  double sum = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), z);
    cdf_[i] = sum;
  }
  const double inv = 1.0 / sum;
  for (auto& c : cdf_) c *= inv;
  cdf_.back() = 1.0;  // guard against rounding
}

std::uint64_t ZipfGenerator::Next() {
  const double u = rng_.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

}  // namespace mgjoin
