#ifndef MGJOIN_COMMON_STATUS_H_
#define MGJOIN_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace mgjoin {

/// Error codes used across the library. Modeled after the RocksDB / Arrow
/// convention of returning a Status object instead of throwing exceptions
/// across library boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfMemory,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
};

/// \brief Outcome of a fallible operation.
///
/// A Status is cheap to copy in the OK case (no allocation). Non-OK
/// statuses carry a code and a human-readable message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Renders e.g. "InvalidArgument: packet size must be positive".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Either a value of type T or an error Status.
///
/// Usage:
/// \code
///   Result<Topology> topo = Topology::Make(opts);
///   if (!topo.ok()) return topo.status();
///   Use(topo.value());
/// \endcode
template <typename T>
class Result {
 public:
  Result(T value) : var_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                        // NOLINT(runtime/explicit)
      : var_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(var_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(var_);
  }

  T& value() & { return std::get<T>(var_); }
  const T& value() const& { return std::get<T>(var_); }
  T&& value() && { return std::get<T>(std::move(var_)); }

  /// Moves the value out, aborting if the Result holds an error. Only for
  /// call sites that have already checked ok() or are in test code.
  T ValueOrDie() && {
    if (!ok()) {
      Abort(status());
    }
    return std::get<T>(std::move(var_));
  }

 private:
  [[noreturn]] static void Abort(const Status& st);

  std::variant<T, Status> var_;
};

namespace internal {
[[noreturn]] void AbortWithStatus(const std::string& rendered);
}  // namespace internal

template <typename T>
void Result<T>::Abort(const Status& st) {
  internal::AbortWithStatus(st.ToString());
}

/// Propagates a non-OK Status from the current function.
#define MGJ_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::mgjoin::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (false)

/// Assigns the value of a Result to `lhs`, or propagates its error.
#define MGJ_ASSIGN_OR_RETURN(lhs, rexpr)        \
  auto MGJ_CONCAT_(_res, __LINE__) = (rexpr);   \
  if (!MGJ_CONCAT_(_res, __LINE__).ok())        \
    return MGJ_CONCAT_(_res, __LINE__).status(); \
  lhs = std::move(MGJ_CONCAT_(_res, __LINE__)).value()

#define MGJ_CONCAT_INNER_(a, b) a##b
#define MGJ_CONCAT_(a, b) MGJ_CONCAT_INNER_(a, b)

}  // namespace mgjoin

#endif  // MGJOIN_COMMON_STATUS_H_
